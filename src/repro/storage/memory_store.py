"""In-memory tuple store with size accounting."""

from __future__ import annotations

from typing import Iterator

from repro.engine.stream import StreamTuple


class MemoryStore:
    """A simple per-relation in-memory tuple store.

    Tracks total stored size (in tuple size units) and supports removal by
    tuple identity, which migrations rely on.
    """

    def __init__(self) -> None:
        self._by_relation: dict[str, dict[int, StreamTuple]] = {}
        self._size = 0.0

    def __len__(self) -> int:
        return sum(len(rel) for rel in self._by_relation.values())

    @property
    def size(self) -> float:
        """Total stored size in tuple size units."""
        return self._size

    def add(self, item: StreamTuple) -> None:
        """Store ``item`` (idempotent per tuple_id)."""
        relation = self._by_relation.setdefault(item.relation, {})
        if item.tuple_id not in relation:
            relation[item.tuple_id] = item
            self._size += item.size

    def remove(self, item: StreamTuple) -> bool:
        """Remove ``item`` if present; returns True when something was removed."""
        relation = self._by_relation.get(item.relation)
        if not relation or item.tuple_id not in relation:
            return False
        removed = relation.pop(item.tuple_id)
        self._size -= removed.size
        return True

    def contains(self, item: StreamTuple) -> bool:
        """Whether ``item`` is currently stored."""
        relation = self._by_relation.get(item.relation)
        return bool(relation) and item.tuple_id in relation

    def count(self, relation: str) -> int:
        """Number of stored tuples of ``relation``."""
        return len(self._by_relation.get(relation, {}))

    def tuples(self, relation: str | None = None) -> Iterator[StreamTuple]:
        """Iterate over stored tuples, optionally restricted to one relation."""
        if relation is not None:
            yield from list(self._by_relation.get(relation, {}).values())
            return
        for rel in list(self._by_relation.values()):
            yield from list(rel.values())

    def clear(self) -> None:
        """Drop everything."""
        self._by_relation.clear()
        self._size = 0.0
