"""Durable epoch-state checkpoints: an SQLite-WAL-backed snapshot + delta log.

One :class:`CheckpointStore` serves a whole run.  Each task journals its
state mutations as pickled *delta* entries; at epoch-aligned safe points the
task writes a full *snapshot* of its state, which truncates its delta log.
Recovery reads the last snapshot and replays the deltas logged after it
(see :mod:`repro.core.recovery`).

Durability model: the store lives in a WAL-mode SQLite file (a temp file by
default, removed when the run closes the store).  Deltas are buffered in
memory and flushed with ``executemany`` every ``flush_every`` entries —
write-behind, like a group-committed log — and are force-flushed at every
snapshot and at crash time, so the on-disk journal is always complete before
recovery reads it.

Threading model: the threaded executor journals from its worker threads
(handlers run machine-locally on the worker that owns the machine), so the
store cannot be bound to the thread that created it.  Every thread gets its
own SQLite connection on first use (``sqlite3`` connections are
thread-bound by default), all configured identically — WAL readers and
writers on the same file compose — and one store-wide lock serialises the
buffer/counter bookkeeping and each database transaction.  The lock is
coarse but uncontended in practice: the dispatch gate never lets two
handlers of the same machine overlap, and cross-machine journal writes are
short appends.

Journaling charges **zero virtual time** and touches neither the event heap
nor the rng, so a fault-free run with checkpointing enabled is bit-identical
to the same run without it (pinned in ``tests/test_fault_recovery.py``).
The I/O cost is surfaced instead as ``RunResult.checkpoint_overhead`` (bytes
written), which the recovery benchmark charts against the interval.

Integrity model: every snapshot and delta row carries a CRC-32 of its
payload, verified on :meth:`load`.  The store retains the newest *two*
snapshots per task (plus the deltas back to the older one), so a torn or
corrupt newest snapshot recovers from the previous intact one with a longer
replay instead of deserialising garbage.  A corrupt delta at the journal
tail is treated as a torn write and truncated (nothing after it was applied
durably); a corrupt delta *followed by intact rows* — or no intact snapshot
at all — cannot be masked and raises :class:`CheckpointCorruptionError`.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import tempfile
import threading
import zlib
from typing import Any


class CheckpointCorruptionError(RuntimeError):
    """No intact checkpoint state remains for a task.

    Raised by :meth:`CheckpointStore.load` when every stored snapshot of a
    task fails its checksum, or when a delta row *inside* the replay chain
    (i.e. with intact rows after it) is corrupt — either way the journal
    cannot reconstruct a consistent state and recovery must fail loudly.
    """

    def __init__(self, task: str, reason: str) -> None:
        self.task = task
        super().__init__(f"checkpoint state for task {task!r} is corrupt: {reason}")


class CheckpointStore:
    """Snapshot + delta journal for every task of one run.

    Safe to call from any thread; see the module docstring for the
    connection-per-thread model.

    Args:
        path: SQLite database file.  ``None`` creates a temp file that is
            deleted on :meth:`close`.
        flush_every: buffered delta entries per task before an
            ``executemany`` flush to the database.
    """

    def __init__(self, path: str | None = None, flush_every: int = 64) -> None:
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-checkpoint-", suffix=".sqlite")
            os.close(handle)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self.flush_every = max(1, int(flush_every))
        self._lock = threading.Lock()
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        conn = self._connection()
        conn.execute(
            "CREATE TABLE IF NOT EXISTS snapshots ("
            " task TEXT NOT NULL, seq INTEGER NOT NULL, payload BLOB NOT NULL,"
            " checksum INTEGER NOT NULL, PRIMARY KEY (task, seq))"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS deltas ("
            " task TEXT NOT NULL, seq INTEGER NOT NULL, payload BLOB NOT NULL,"
            " checksum INTEGER NOT NULL, PRIMARY KEY (task, seq))"
        )
        conn.commit()
        self._buffers: dict[str, list[tuple[str, int, bytes, int]]] = {}
        self._next_seq: dict[str, int] = {}
        self._since_snapshot: dict[str, int] = {}
        self.bytes_written = 0
        self.delta_entries = 0
        self.snapshots_taken = 0
        self._closed = False

    def _connection(self) -> sqlite3.Connection:
        """The calling thread's connection, created and configured on first
        use (WAL, group-commit-friendly sync level, and a busy timeout as a
        belt-and-braces guard — the store lock already serialises writes).

        Called with the store lock held (every journaling/recovery entry
        point takes it), so it must not re-acquire it; the bare
        ``list.append`` registration is atomic under the GIL either way.
        """
        conn = getattr(self._local, "conn", None)
        if conn is None:
            # check_same_thread=False lets close() (and crash-path flushes)
            # run from a thread other than the opener; every statement still
            # executes under the store lock, never concurrently.
            conn = sqlite3.connect(self.path, check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=10000")
            self._local.conn = conn
            self._connections.append(conn)
        return conn

    # ------------------------------------------------------------- journaling

    def log(self, task: str, entry: Any) -> int:
        """Append one delta entry for ``task``; returns the number of deltas
        logged since that task's last snapshot."""
        payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            seq = self._next_seq.get(task, 0)
            self._next_seq[task] = seq + 1
            buffer = self._buffers.setdefault(task, [])
            buffer.append((task, seq, payload, zlib.crc32(payload)))
            if len(buffer) >= self.flush_every:
                self._flush_task_locked(task)
            self.bytes_written += len(payload)
            self.delta_entries += 1
            count = self._since_snapshot.get(task, 0) + 1
            self._since_snapshot[task] = count
            return count

    def snapshot(self, task: str, state: Any) -> None:
        """Write a full state snapshot for ``task`` and prune its journal.

        The newest two snapshots are retained (with the deltas back to the
        older one) so a corrupt newest snapshot can fall back to the previous
        intact one; everything older is pruned.  Buffered deltas are flushed
        first — they are the fallback's replay tail, no longer superseded
        garbage.
        """
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._flush_task_locked(task)
            seq = self._next_seq.get(task, 0)
            conn = self._connection()
            conn.execute(
                "INSERT OR REPLACE INTO snapshots (task, seq, payload, checksum)"
                " VALUES (?, ?, ?, ?)",
                (task, seq, payload, zlib.crc32(payload)),
            )
            conn.execute(
                "DELETE FROM snapshots WHERE task = ? AND seq NOT IN ("
                " SELECT seq FROM snapshots WHERE task = ?"
                " ORDER BY seq DESC LIMIT 2)",
                (task, task),
            )
            conn.execute(
                "DELETE FROM deltas WHERE task = ? AND seq < ("
                " SELECT MIN(seq) FROM snapshots WHERE task = ?)",
                (task, task),
            )
            conn.commit()
            self.bytes_written += len(payload)
            self.snapshots_taken += 1
            self._since_snapshot[task] = 0

    def delta_count(self, task: str) -> int:
        """Deltas logged for ``task`` since its last snapshot."""
        with self._lock:
            return self._since_snapshot.get(task, 0)

    # --------------------------------------------------------------- recovery

    def load(self, task: str) -> tuple[Any, list[Any]]:
        """The last *intact* snapshot (or None) and its post-snapshot deltas.

        Every row is checksum-verified.  A corrupt newest snapshot falls back
        to the previous intact one (replaying a longer delta tail); a corrupt
        delta at the journal tail is truncated as a torn write; corruption
        that cannot be masked — no intact snapshot left, or a corrupt delta
        with intact rows after it — raises :class:`CheckpointCorruptionError`.
        """
        with self._lock:
            self._flush_task_locked(task)
            conn = self._connection()
            snapshot = None
            snapshot_seq = 0
            snapshot_rows = conn.execute(
                "SELECT seq, payload, checksum FROM snapshots WHERE task = ?"
                " ORDER BY seq DESC",
                (task,),
            ).fetchall()
            for seq, payload, checksum in snapshot_rows:
                if zlib.crc32(payload) != checksum:
                    continue
                try:
                    snapshot = pickle.loads(payload)
                except Exception:
                    continue
                snapshot_seq = seq
                break
            else:
                if snapshot_rows:
                    raise CheckpointCorruptionError(
                        task, f"all {len(snapshot_rows)} stored snapshot(s) failed "
                        "their checksum"
                    )
            delta_rows = conn.execute(
                "SELECT seq, payload, checksum FROM deltas WHERE task = ?"
                " AND seq >= ? ORDER BY seq",
                (task, snapshot_seq),
            ).fetchall()
            deltas = []
            for index, (seq, payload, checksum) in enumerate(delta_rows):
                intact = zlib.crc32(payload) == checksum
                if intact:
                    try:
                        deltas.append(pickle.loads(payload))
                        continue
                    except Exception:
                        intact = False
                if not intact:
                    tail = delta_rows[index + 1:]
                    if any(
                        zlib.crc32(later_payload) == later_checksum
                        for _seq, later_payload, later_checksum in tail
                    ):
                        raise CheckpointCorruptionError(
                            task,
                            f"delta seq {seq} failed its checksum with intact "
                            "entries after it (not a torn tail)",
                        )
                    # Torn tail: the corrupt row and everything after it were
                    # never durably applied; replay stops here.
                    break
            return snapshot, deltas

    # --------------------------------------------------------------- plumbing

    def _flush_task_locked(self, task: str) -> None:
        """Flush one task's buffer; the caller holds the store lock."""
        buffer = self._buffers.pop(task, None)
        if buffer:
            conn = self._connection()
            conn.executemany(
                "INSERT INTO deltas (task, seq, payload, checksum)"
                " VALUES (?, ?, ?, ?)",
                buffer,
            )
            conn.commit()

    def flush(self) -> None:
        """Force every buffered delta to the database (pre-recovery barrier)."""
        with self._lock:
            for task in list(self._buffers):
                self._flush_task_locked(task)

    def close(self) -> None:
        """Close every thread's connection and remove the backing temp file.

        Connections opened by worker threads are closed here from the
        closing thread (they are opened with ``check_same_thread=False``);
        by close time the worker fleet has been joined, so none is in use.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections = self._connections
            self._connections = []
        try:
            for conn in connections:
                try:
                    conn.close()
                except sqlite3.Error:  # pragma: no cover - best-effort close
                    pass
        finally:
            if self._owns_file:
                for suffix in ("", "-wal", "-shm"):
                    try:
                        os.unlink(self.path + suffix)
                    except OSError:
                        pass

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
