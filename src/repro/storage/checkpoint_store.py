"""Durable epoch-state checkpoints: an SQLite-WAL-backed snapshot + delta log.

One :class:`CheckpointStore` serves a whole run.  Each task journals its
state mutations as pickled *delta* entries; at epoch-aligned safe points the
task writes a full *snapshot* of its state, which truncates its delta log.
Recovery reads the last snapshot and replays the deltas logged after it
(see :mod:`repro.core.recovery`).

Durability model: the store lives in a WAL-mode SQLite file (a temp file by
default, removed when the run closes the store).  Deltas are buffered in
memory and flushed with ``executemany`` every ``flush_every`` entries —
write-behind, like a group-committed log — and are force-flushed at every
snapshot and at crash time, so the on-disk journal is always complete before
recovery reads it.

Journaling charges **zero virtual time** and touches neither the event heap
nor the rng, so a fault-free run with checkpointing enabled is bit-identical
to the same run without it (pinned in ``tests/test_fault_recovery.py``).
The I/O cost is surfaced instead as ``RunResult.checkpoint_overhead`` (bytes
written), which the recovery benchmark charts against the interval.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import tempfile
from typing import Any


class CheckpointStore:
    """Snapshot + delta journal for every task of one run.

    Args:
        path: SQLite database file.  ``None`` creates a temp file that is
            deleted on :meth:`close`.
        flush_every: buffered delta entries per task before an
            ``executemany`` flush to the database.
    """

    def __init__(self, path: str | None = None, flush_every: int = 64) -> None:
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-checkpoint-", suffix=".sqlite")
            os.close(handle)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self.flush_every = max(1, int(flush_every))
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS snapshots ("
            " task TEXT PRIMARY KEY, seq INTEGER NOT NULL, payload BLOB NOT NULL)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS deltas ("
            " task TEXT NOT NULL, seq INTEGER NOT NULL, payload BLOB NOT NULL,"
            " PRIMARY KEY (task, seq))"
        )
        self._conn.commit()
        self._buffers: dict[str, list[tuple[str, int, bytes]]] = {}
        self._next_seq: dict[str, int] = {}
        self._since_snapshot: dict[str, int] = {}
        self.bytes_written = 0
        self.delta_entries = 0
        self.snapshots_taken = 0
        self._closed = False

    # ------------------------------------------------------------- journaling

    def log(self, task: str, entry: Any) -> int:
        """Append one delta entry for ``task``; returns the number of deltas
        logged since that task's last snapshot."""
        payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        seq = self._next_seq.get(task, 0)
        self._next_seq[task] = seq + 1
        buffer = self._buffers.setdefault(task, [])
        buffer.append((task, seq, payload))
        if len(buffer) >= self.flush_every:
            self._flush_task(task)
        self.bytes_written += len(payload)
        self.delta_entries += 1
        count = self._since_snapshot.get(task, 0) + 1
        self._since_snapshot[task] = count
        return count

    def snapshot(self, task: str, state: Any) -> None:
        """Write a full state snapshot for ``task`` and truncate its deltas."""
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        self._buffers.pop(task, None)  # superseded, never flushed
        seq = self._next_seq.get(task, 0)
        self._conn.execute("DELETE FROM deltas WHERE task = ?", (task,))
        self._conn.execute(
            "INSERT OR REPLACE INTO snapshots (task, seq, payload) VALUES (?, ?, ?)",
            (task, seq, payload),
        )
        self._conn.commit()
        self.bytes_written += len(payload)
        self.snapshots_taken += 1
        self._since_snapshot[task] = 0

    def delta_count(self, task: str) -> int:
        """Deltas logged for ``task`` since its last snapshot."""
        return self._since_snapshot.get(task, 0)

    # --------------------------------------------------------------- recovery

    def load(self, task: str) -> tuple[Any, list[Any]]:
        """The last snapshot (or None) and post-snapshot deltas of ``task``."""
        self._flush_task(task)
        row = self._conn.execute(
            "SELECT payload FROM snapshots WHERE task = ?", (task,)
        ).fetchone()
        snapshot = pickle.loads(row[0]) if row is not None else None
        deltas = [
            pickle.loads(payload)
            for (payload,) in self._conn.execute(
                "SELECT payload FROM deltas WHERE task = ? ORDER BY seq", (task,)
            )
        ]
        return snapshot, deltas

    # --------------------------------------------------------------- plumbing

    def _flush_task(self, task: str) -> None:
        buffer = self._buffers.pop(task, None)
        if buffer:
            self._conn.executemany(
                "INSERT INTO deltas (task, seq, payload) VALUES (?, ?, ?)", buffer
            )
            self._conn.commit()

    def flush(self) -> None:
        """Force every buffered delta to the database (pre-recovery barrier)."""
        for task in list(self._buffers):
            self._flush_task(task)

    def close(self) -> None:
        """Close the database and remove the backing temp file."""
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.close()
        finally:
            if self._owns_file:
                for suffix in ("", "-wal", "-shm"):
                    try:
                        os.unlink(self.path + suffix)
                    except OSError:
                        pass

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
