"""Tuple store with a memory budget and spill penalty (BerkeleyDB stand-in)."""

from __future__ import annotations

from repro.engine.stream import StreamTuple
from repro.storage.memory_store import MemoryStore


class SpillStore(MemoryStore):
    """A :class:`MemoryStore` that models overflow to secondary storage.

    Once the stored size exceeds ``capacity`` the store is considered spilled:
    every subsequent access reports ``penalty`` as its cost factor instead of
    1.0, and the amount of data beyond the budget is tracked as
    ``spilled_size``.  The paper's finding that machines which overflow to
    disk dominate execution time is reproduced by feeding this factor into the
    machine cost model.

    Args:
        capacity: memory budget in tuple size units; ``None`` disables
            spilling.
        penalty: cost multiplier once the budget is exceeded.
    """

    def __init__(self, capacity: float | None = None, penalty: float = 10.0) -> None:
        super().__init__()
        self.capacity = capacity
        self.penalty = penalty
        self.spill_events = 0

    @property
    def is_spilled(self) -> bool:
        """Whether the store currently exceeds its memory budget."""
        return self.capacity is not None and self.size > self.capacity

    @property
    def spilled_size(self) -> float:
        """Amount of stored data beyond the memory budget."""
        if self.capacity is None:
            return 0.0
        return max(0.0, self.size - self.capacity)

    def add(self, item: StreamTuple) -> float:
        """Store ``item``; returns the access cost factor (1.0 or the penalty)."""
        super().add(item)
        if self.is_spilled:
            self.spill_events += 1
            return self.penalty
        return 1.0

    def access_factor(self) -> float:
        """Cost factor for probing/maintaining state in its current condition."""
        return self.penalty if self.is_spilled else 1.0
