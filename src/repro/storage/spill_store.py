"""Tuple store with a memory budget and spill penalty (BerkeleyDB stand-in)."""

from __future__ import annotations

from repro.engine.stream import StreamTuple
from repro.storage.memory_store import MemoryStore


class SpillStore(MemoryStore):
    """A :class:`MemoryStore` that models overflow to secondary storage.

    Once the stored size exceeds ``capacity`` the store is considered spilled:
    every subsequent access reports ``penalty`` as its cost factor instead of
    1.0, and the amount of data beyond the budget is tracked as
    ``spilled_size``.  The paper's finding that machines which overflow to
    disk dominate execution time is reproduced by feeding this factor into the
    machine cost model.

    Tuples can additionally be tagged into named *partitions* (the epoch
    protocol's Keep/Drop/Δ'/µ sub-stores) and a whole partition dropped at
    once at FinalizeMigration time.  ``spilled_size`` is maintained
    incrementally — not recomputed per access — and a wholesale drop settles
    the counter against the tuples actually removed, so interleaving
    individual removals (migrations) with partition drops (finalize) cannot
    drift the accounting (pinned against a manual count in
    ``tests/test_storage.py``).

    Args:
        capacity: memory budget in tuple size units; ``None`` disables
            spilling.
        penalty: cost multiplier once the budget is exceeded.
    """

    def __init__(self, capacity: float | None = None, penalty: float = 10.0) -> None:
        super().__init__()
        self.capacity = capacity
        self.penalty = penalty
        self.spill_events = 0
        self._spilled_size = 0.0
        self._partitions: dict[object, dict[int, StreamTuple]] = {}

    @property
    def is_spilled(self) -> bool:
        """Whether the store currently exceeds its memory budget."""
        return self.capacity is not None and self.size > self.capacity

    @property
    def spilled_size(self) -> float:
        """Amount of stored data beyond the memory budget."""
        return self._spilled_size

    def _settle_spilled(self, previous_size: float) -> None:
        """Fold one size change into the incremental spilled counter."""
        if self.capacity is None:
            self._spilled_size = 0.0
            return
        if self.size >= previous_size:  # grew: spill the part beyond the budget
            self._spilled_size += self.size - max(previous_size, self.capacity)
        else:  # shrank: unspill what dropped back under the budget
            self._spilled_size -= previous_size - max(self.size, self.capacity)
        if self._spilled_size < 0.0:
            self._spilled_size = 0.0

    def add(self, item: StreamTuple, tag: object | None = None) -> float:
        """Store ``item`` (optionally under partition ``tag``); returns the
        access cost factor (1.0 or the penalty)."""
        previous = self.size
        super().add(item)
        self._settle_spilled(previous)
        if tag is not None:
            self._partitions.setdefault(tag, {})[item.tuple_id] = item
        if self.is_spilled:
            self.spill_events += 1
            return self.penalty
        return 1.0

    def remove(self, item: StreamTuple) -> bool:
        """Remove ``item`` if present; returns True when something was removed."""
        previous = self.size
        removed = super().remove(item)
        if removed:
            self._settle_spilled(previous)
            for members in self._partitions.values():
                members.pop(item.tuple_id, None)
        return removed

    def partition_size(self, tag: object) -> float:
        """Current total size of the live tuples tagged ``tag``."""
        members = self._partitions.get(tag)
        if not members:
            return 0.0
        return sum(item.size for item in members.values() if self.contains(item))

    def drop_partition(self, tag: object) -> float:
        """Drop every tuple of partition ``tag`` wholesale; returns the freed
        size.  Settles the spilled counter against the tuples actually removed
        (a tuple already removed individually — e.g. migrated away after being
        tagged — frees nothing)."""
        members = self._partitions.pop(tag, None)
        if not members:
            return 0.0
        previous = self.size
        for item in members.values():
            if MemoryStore.remove(self, item):
                for other in self._partitions.values():
                    other.pop(item.tuple_id, None)
        freed = previous - self.size
        self._settle_spilled(previous)
        return freed

    def clear(self) -> None:
        """Drop everything."""
        super().clear()
        self._partitions.clear()
        self._spilled_size = 0.0

    def access_factor(self) -> float:
        """Cost factor for probing/maintaining state in its current condition."""
        return self.penalty if self.is_spilled else 1.0
