"""Joiner-local storage with an out-of-core (spill) model.

The paper backs joiners with BerkeleyDB so that overflowing main memory does
not block processing, at the cost of an order-of-magnitude slowdown (§5).
This package provides the equivalent:

* :class:`MemoryStore` — plain in-memory tuple storage with size accounting,
* :class:`SpillStore` — a store with a memory budget; tuples beyond the
  budget are "spilled" and every touch of spilled data reports a penalty
  factor that the engine converts into extra processing time.
"""

from repro.storage.memory_store import MemoryStore
from repro.storage.spill_store import SpillStore

__all__ = ["MemoryStore", "SpillStore"]
