"""Joiner-local storage with out-of-core (spill) and durable-checkpoint models.

The paper backs joiners with BerkeleyDB so that overflowing main memory does
not block processing, at the cost of an order-of-magnitude slowdown (§5).
This package provides the equivalent:

* :class:`MemoryStore` — plain in-memory tuple storage with size accounting,
* :class:`SpillStore` — a store with a memory budget and tag-partitioned
  sub-stores; tuples beyond the budget are "spilled" and every touch of
  spilled data reports a penalty factor that the engine converts into extra
  processing time,
* :class:`CheckpointStore` — the SQLite-WAL-backed snapshot + delta journal
  behind the fault-tolerant join plane (see ``repro.core.recovery``).
"""

from repro.storage.checkpoint_store import CheckpointCorruptionError, CheckpointStore
from repro.storage.memory_store import MemoryStore
from repro.storage.spill_store import SpillStore

__all__ = [
    "CheckpointCorruptionError",
    "CheckpointStore",
    "MemoryStore",
    "SpillStore",
]
