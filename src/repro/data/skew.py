"""Zipf-skewed value sampling (Chaudhuri–Narasayya generator stand-in).

The degree of skew is adjusted by the Zipf parameter ``z``: value ``i`` (of
``n`` values) is drawn with probability proportional to ``1 / i**z``.  ``z=0``
is the uniform distribution; the paper's skew settings Z0–Z4 correspond to
``z ∈ {0, 0.25, 0.5, 0.75, 1.0}``.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Sequence

#: Mapping from the paper's skew labels to Zipf parameters.
SKEW_LEVELS = {"Z0": 0.0, "Z1": 0.25, "Z2": 0.5, "Z3": 0.75, "Z4": 1.0}


class ZipfSampler:
    """Samples integers ``1..n`` under a Zipf distribution with parameter ``z``.

    Args:
        n: number of distinct values.
        z: Zipf skew parameter (0 = uniform).
        rng: randomness source; a fresh seeded one is created if omitted.
    """

    def __init__(self, n: int, z: float, rng: random.Random | None = None) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if z < 0:
            raise ValueError("z must be >= 0")
        self.n = n
        self.z = z
        self._rng = rng or random.Random(0)
        weights = [1.0 / (i ** z) for i in range(1, n + 1)]
        total = sum(weights)
        self._cumulative = list(itertools.accumulate(w / total for w in weights))
        # Guard against floating point undershoot at the tail.
        self._cumulative[-1] = 1.0

    def sample(self) -> int:
        """Draw one value in ``1..n``."""
        u = self._rng.random()
        return bisect.bisect_left(self._cumulative, u) + 1

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` values."""
        return [self.sample() for _ in range(count)]

    def probability(self, value: int) -> float:
        """Probability of drawing ``value`` (1-based)."""
        if not 1 <= value <= self.n:
            return 0.0
        low = self._cumulative[value - 2] if value >= 2 else 0.0
        return self._cumulative[value - 1] - low


def zipf_choice(values: Sequence, z: float, rng: random.Random) -> object:
    """Pick one element of ``values`` with Zipf(z) weight on its position."""
    sampler = ZipfSampler(len(values), z, rng)
    return values[sampler.sample() - 1]


def skew_parameter(label_or_value: str | float) -> float:
    """Resolve a skew setting given either a label ("Z3") or a number (0.75)."""
    if isinstance(label_or_value, str):
        try:
            return SKEW_LEVELS[label_or_value.upper()]
        except KeyError as exc:
            raise ValueError(f"unknown skew label: {label_or_value!r}") from exc
    return float(label_or_value)
