"""Scaled-down TPC-H-like data generation with Zipf skew.

The generator is deterministic given ``(scale, skew, seed)``.  Skew is applied
to the foreign-key attributes that drive the paper's equi-joins (``suppkey``
and ``orderkey`` references inside LINEITEM): under skewed settings a few
suppliers/orders receive most of the lineitems, which is precisely what breaks
content-sensitive (hash) partitioning in Table 2 while leaving the
content-insensitive operator unaffected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data import schema
from repro.data.skew import ZipfSampler, skew_parameter

Record = dict[str, object]


@dataclass
class TpchDataset:
    """A generated dataset: one list of records per table.

    Attributes:
        scale: scale factor used (1.0 ≈ the paper's 10 GB dataset, shrunk).
        skew: Zipf parameter used for foreign-key distributions.
        tables: mapping table name -> list of records.
    """

    scale: float
    skew: float
    tables: dict[str, list[Record]] = field(default_factory=dict)

    def table(self, name: str) -> list[Record]:
        """Records of table ``name`` (raises KeyError if not generated)."""
        return self.tables[name]

    def cardinality(self, name: str) -> int:
        """Row count of table ``name``."""
        return len(self.tables[name])


def _generate_region() -> list[Record]:
    return [
        {"regionkey": index, "name": name}
        for index, name in enumerate(schema.REGION_NAMES)
    ]


def _generate_nation() -> list[Record]:
    return [
        {"nationkey": index, "name": name, "regionkey": region}
        for index, (name, region) in enumerate(schema.NATION_NAMES)
    ]


def _generate_supplier(count: int, rng: random.Random) -> list[Record]:
    suppliers = []
    for suppkey in range(1, count + 1):
        suppliers.append(
            {
                "suppkey": suppkey,
                "name": f"Supplier#{suppkey:06d}",
                "nationkey": rng.randrange(len(schema.NATION_NAMES)),
                "acctbal": round(rng.uniform(-999.99, 9999.99), 2),
            }
        )
    return suppliers


def _generate_orders(count: int, rng: random.Random) -> list[Record]:
    orders = []
    for orderkey in range(1, count + 1):
        orders.append(
            {
                "orderkey": orderkey,
                "custkey": rng.randrange(1, max(2, count // 10)),
                "orderstatus": rng.choice(("O", "F", "P")),
                "totalprice": round(rng.uniform(900.0, 500000.0), 2),
                "shippriority": rng.choice(schema.ORDER_PRIORITIES),
            }
        )
    return orders


def _generate_lineitem(
    count: int,
    num_orders: int,
    num_suppliers: int,
    skew: float,
    rng: random.Random,
) -> list[Record]:
    order_sampler = ZipfSampler(num_orders, skew, rng)
    supplier_sampler = ZipfSampler(num_suppliers, skew, rng)
    lineitems = []
    for linenumber in range(1, count + 1):
        lineitems.append(
            {
                "orderkey": order_sampler.sample(),
                "suppkey": supplier_sampler.sample(),
                "linenumber": linenumber,
                "quantity": rng.randint(1, 50),
                "extendedprice": round(rng.uniform(900.0, 100000.0), 2),
                "shipdate": rng.randint(1, schema.SHIP_DATE_RANGE),
                "shipmode": rng.choice(schema.SHIP_MODES),
                "shipinstruct": rng.choice(schema.SHIP_INSTRUCTIONS),
            }
        )
    return lineitems


def generate_dataset(
    scale: float = 1.0,
    skew: float | str = 0.0,
    seed: int = 0,
) -> TpchDataset:
    """Generate a full dataset.

    Args:
        scale: scale factor; ``1.0`` generates roughly 6 000 LINEITEM rows
            (the paper's 10 GB dataset shrunk by ~4 orders of magnitude while
            preserving relative table sizes).
        skew: Zipf parameter or paper label ("Z0".."Z4") applied to the
            LINEITEM foreign keys.
        seed: PRNG seed; the generator is fully deterministic.

    Returns:
        A :class:`TpchDataset` with REGION, NATION, SUPPLIER, ORDERS and
        LINEITEM tables.
    """
    z = skew_parameter(skew)
    rng = random.Random(seed)
    specs = schema.TABLE_SPECS
    supplier_count = specs["SUPPLIER"].cardinality(scale)
    orders_count = specs["ORDERS"].cardinality(scale)
    lineitem_count = specs["LINEITEM"].cardinality(scale)

    tables = {
        "REGION": _generate_region(),
        "NATION": _generate_nation(),
        "SUPPLIER": _generate_supplier(supplier_count, rng),
        "ORDERS": _generate_orders(orders_count, rng),
        "LINEITEM": _generate_lineitem(
            lineitem_count, orders_count, supplier_count, z, rng
        ),
    }
    return TpchDataset(scale=scale, skew=z, tables=tables)
