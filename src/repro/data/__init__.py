"""Workload generation: TPC-H-like data with tunable Zipf skew, and queries.

The paper's evaluation uses the TPC-H benchmark generated with the
Chaudhuri–Narasayya skewed generator (Zipf parameter ``z`` in
``{0, 0.25, 0.5, 0.75, 1.0}``, labelled Z0–Z4) at sizes between 8 GB and
640 GB.  Neither the original ``dbgen`` nor multi-hundred-gigabyte datasets
are available (or useful) here, so this package generates *scaled-down,
schema-compatible* tables with the same skew knob and the same relative
cardinalities.  The experiments depend only on relative cardinalities and key
frequency distributions, both of which are preserved.

Queries: the two TPC-H derived equi-joins (EQ5, EQ7), the two synthetic band
joins (BCI — computation-intensive, BNCI — non-computation-intensive), the
Fluct-Join used by the data-dynamics experiment (§5.4), plus the Fig. 1a
inequality-join example.
"""

from repro.data.queries import JoinQuery, available_queries, make_query
from repro.data.skew import ZipfSampler, zipf_choice
from repro.data.tpch import TpchDataset, generate_dataset

__all__ = [
    "JoinQuery",
    "TpchDataset",
    "ZipfSampler",
    "available_queries",
    "generate_dataset",
    "make_query",
    "zipf_choice",
]
