"""The evaluation queries of §5 (Table 1) plus supporting examples.

Each query is represented as a :class:`JoinQuery`: two fully materialised
input streams (the paper materialises all intermediate results before online
processing) and the join predicate between them.

* **EQ5** — the most expensive join of TPC-H Q5:
  ``(REGION ⋈ NATION ⋈ SUPPLIER) ⋈ LINEITEM`` on ``suppkey`` (equi-join).
* **EQ7** — the most expensive join of TPC-H Q7:
  ``(SUPPLIER ⋈ NATION) ⋈ LINEITEM`` on ``suppkey`` (equi-join).
* **BCI** — computation-intensive band self-join of LINEITEM on ``shipdate``
  (output about three orders of magnitude larger than the input).
* **BNCI** — non-computation-intensive band self-join of LINEITEM on
  ``orderkey`` (output about an order of magnitude smaller than the input).
* **FLUCT** — the Fluct-Join of §5.4: ``ORDERS ⋈ LINEITEM`` on ``orderkey``
  with ship-priority filters, used with fluctuating arrival rates.
* **THETA_NEQ** — the inequality join of Fig. 1a, exercising general theta
  predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.tpch import Record, TpchDataset
from repro.joins.predicates import (
    BandPredicate,
    EquiPredicate,
    JoinPredicate,
    NotEqualPredicate,
)


@dataclass
class JoinQuery:
    """A two-stream join workload.

    Attributes:
        name: query identifier (EQ5, EQ7, BCI, BNCI, FLUCT, THETA_NEQ).
        left_relation: logical name of the left ("R") stream.
        right_relation: logical name of the right ("S") stream.
        left_records: materialised left input.
        right_records: materialised right input.
        predicate: the join condition between left and right records.
        left_tuple_size: storage size units of a left tuple.
        right_tuple_size: storage size units of a right tuple.
    """

    name: str
    left_relation: str
    right_relation: str
    left_records: list[Record]
    right_records: list[Record]
    predicate: JoinPredicate
    left_tuple_size: float = 1.0
    right_tuple_size: float = 1.0
    description: str = ""

    @property
    def cardinalities(self) -> tuple[int, int]:
        """(|R|, |S|) cardinalities of the materialised inputs."""
        return len(self.left_records), len(self.right_records)

    def summary(self) -> str:
        """One-line description used by the benchmark reports."""
        left, right = self.cardinalities
        return (
            f"{self.name}: {self.left_relation}({left}) ⋈ "
            f"{self.right_relation}({right}) on {self.predicate.describe()}"
        )


def _supplier_side_q5(dataset: TpchDataset, region_name: str = "ASIA") -> list[Record]:
    """Materialise (REGION ⋈ NATION ⋈ SUPPLIER) restricted to one region.

    At very small scale factors the preferred region may contain no suppliers
    at all; in that case the most populated region is used instead so the
    query's left stream is never empty.
    """
    nations_by_key = {n["nationkey"]: n for n in dataset.table("NATION")}
    suppliers = dataset.table("SUPPLIER")

    def side_for(region_keys: set) -> list[Record]:
        side = []
        for supplier in suppliers:
            nation = nations_by_key.get(supplier["nationkey"])
            if nation is None or nation["regionkey"] not in region_keys:
                continue
            record = dict(supplier)
            record["nation_name"] = nation["name"]
            record["regionkey"] = nation["regionkey"]
            side.append(record)
        return side

    preferred = {r["regionkey"] for r in dataset.table("REGION") if r["name"] == region_name}
    side = side_for(preferred)
    if side:
        return side
    candidates = [
        side_for({region["regionkey"]}) for region in dataset.table("REGION")
    ]
    return max(candidates, key=len)


def _supplier_side_q7(
    dataset: TpchDataset, nation_names: tuple[str, str] = ("FRANCE", "GERMANY")
) -> list[Record]:
    """Materialise (SUPPLIER ⋈ NATION) restricted to the two Q7 nations.

    Falls back to the two most-populated nations when the preferred pair has
    no suppliers at tiny scale factors.
    """
    nations_by_key = {n["nationkey"]: n for n in dataset.table("NATION")}
    suppliers = dataset.table("SUPPLIER")

    def side_for(names: tuple[str, ...]) -> list[Record]:
        side = []
        for supplier in suppliers:
            nation = nations_by_key.get(supplier["nationkey"])
            if nation is None or nation["name"] not in names:
                continue
            record = dict(supplier)
            record["nation_name"] = nation["name"]
            side.append(record)
        return side

    side = side_for(nation_names)
    if side:
        return side
    counts: dict[str, int] = {}
    for supplier in suppliers:
        nation = nations_by_key.get(supplier["nationkey"])
        if nation is not None:
            counts[nation["name"]] = counts.get(nation["name"], 0) + 1
    top_two = tuple(sorted(counts, key=counts.get, reverse=True)[:2])
    return side_for(top_two)


def _make_eq5(dataset: TpchDataset) -> JoinQuery:
    left = _supplier_side_q5(dataset)
    right = list(dataset.table("LINEITEM"))
    return JoinQuery(
        name="EQ5",
        left_relation="RNS",
        right_relation="LINEITEM",
        left_records=left,
        right_records=right,
        predicate=EquiPredicate("suppkey", "suppkey"),
        left_tuple_size=1.0,
        right_tuple_size=1.0,
        description="(R ⋈ N ⋈ S) ⋈ L, the most expensive join of TPC-H Q5",
    )


def _make_eq7(dataset: TpchDataset) -> JoinQuery:
    left = _supplier_side_q7(dataset)
    right = list(dataset.table("LINEITEM"))
    return JoinQuery(
        name="EQ7",
        left_relation="SN",
        right_relation="LINEITEM",
        left_records=left,
        right_records=right,
        predicate=EquiPredicate("suppkey", "suppkey"),
        description="(S ⋈ N) ⋈ L, the most expensive join of TPC-H Q7",
    )


def _make_bci(dataset: TpchDataset) -> JoinQuery:
    lineitem = dataset.table("LINEITEM")
    left = [
        dict(item)
        for item in lineitem
        if item["shipmode"] == "TRUCK" and item["quantity"] > 45
    ]
    right = [dict(item) for item in lineitem if item["shipmode"] != "TRUCK"]
    return JoinQuery(
        name="BCI",
        left_relation="L1",
        right_relation="L2",
        left_records=left,
        right_records=right,
        predicate=BandPredicate("shipdate", "shipdate", width=1),
        description="computation-intensive band self-join on shipdate (high selectivity)",
    )


def _make_bnci(dataset: TpchDataset) -> JoinQuery:
    lineitem = dataset.table("LINEITEM")
    left = [
        dict(item)
        for item in lineitem
        if item["shipmode"] == "TRUCK" and item["quantity"] > 48
    ]
    right = [dict(item) for item in lineitem if item["shipinstruct"] == "NONE"]
    return JoinQuery(
        name="BNCI",
        left_relation="L1",
        right_relation="L2",
        left_records=left,
        right_records=right,
        predicate=BandPredicate("orderkey", "orderkey", width=1),
        description="non-computation-intensive band self-join on orderkey (low selectivity)",
    )


def _make_fluct(dataset: TpchDataset) -> JoinQuery:
    orders = [
        dict(order)
        for order in dataset.table("ORDERS")
        if order["shippriority"] not in ("5-LOW", "1-URGENT")
    ]
    lineitem = list(dataset.table("LINEITEM"))
    return JoinQuery(
        name="FLUCT",
        left_relation="ORDERS",
        right_relation="LINEITEM",
        left_records=orders,
        right_records=lineitem,
        predicate=EquiPredicate("orderkey", "orderkey"),
        description="Fluct-Join: ORDERS ⋈ LINEITEM with shippriority filters (§5.4)",
    )


def _make_fluct_sym(dataset: TpchDataset) -> JoinQuery:
    """Balanced variant of the Fluct-Join used by the §5.4 benchmark.

    The paper drives the fluctuation experiment with ORDERS ⋈ LINEITEM at a
    1:4 cardinality ratio on an 8 GB dataset — large enough for several full
    swings of the |R|/|S| ratio.  At laptop scale the ORDERS side would be
    exhausted after a single swing, so this variant splits LINEITEM into two
    comparable halves joined on ``orderkey``, which exercises exactly the same
    operator code path while allowing several ratio swings.
    """
    lineitem = dataset.table("LINEITEM")
    left = [dict(item) for item in lineitem if item["linenumber"] % 2 == 0]
    right = [dict(item) for item in lineitem if item["linenumber"] % 2 == 1]
    return JoinQuery(
        name="FLUCT_SYM",
        left_relation="L_EVEN",
        right_relation="L_ODD",
        left_records=left,
        right_records=right,
        predicate=EquiPredicate("orderkey", "orderkey"),
        description="balanced Fluct-Join variant for the data-dynamics experiment",
    )


def _make_theta_neq(dataset: TpchDataset) -> JoinQuery:
    suppliers = list(dataset.table("SUPPLIER"))
    nations = list(dataset.table("NATION"))
    return JoinQuery(
        name="THETA_NEQ",
        left_relation="SUPPLIER",
        right_relation="NATION",
        left_records=suppliers,
        right_records=nations,
        predicate=NotEqualPredicate("nationkey", "nationkey"),
        description="inequality join of Fig. 1a (general theta predicate)",
    )


_BUILDERS = {
    "EQ5": _make_eq5,
    "EQ7": _make_eq7,
    "BCI": _make_bci,
    "BNCI": _make_bnci,
    "FLUCT": _make_fluct,
    "FLUCT_SYM": _make_fluct_sym,
    "THETA_NEQ": _make_theta_neq,
}


def available_queries() -> list[str]:
    """Names of the queries this module can build."""
    return sorted(_BUILDERS)


def make_query(name: str, dataset: TpchDataset) -> JoinQuery:
    """Build query ``name`` over ``dataset``.

    Raises:
        ValueError: if the query name is unknown.
    """
    try:
        builder = _BUILDERS[name.upper()]
    except KeyError as exc:
        raise ValueError(
            f"unknown query {name!r}; available: {', '.join(available_queries())}"
        ) from exc
    return builder(dataset)
