"""TPC-H-like schema definitions.

Only the tables and attributes exercised by the paper's queries are modelled:
REGION, NATION, SUPPLIER, ORDERS and LINEITEM.  Record payloads are plain
dictionaries; the column lists below document each table and are used by the
generator and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

REGION_COLUMNS = ("regionkey", "name")
NATION_COLUMNS = ("nationkey", "name", "regionkey")
SUPPLIER_COLUMNS = ("suppkey", "name", "nationkey", "acctbal")
ORDERS_COLUMNS = ("orderkey", "custkey", "orderstatus", "totalprice", "shippriority")
LINEITEM_COLUMNS = (
    "orderkey",
    "suppkey",
    "linenumber",
    "quantity",
    "extendedprice",
    "shipdate",
    "shipmode",
    "shipinstruct",
)

#: Region names as in TPC-H.
REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: The 25 TPC-H nations (name, region index).
NATION_NAMES = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

SHIP_MODES = ("TRUCK", "MAIL", "SHIP", "AIR", "RAIL", "FOB", "REG AIR")
SHIP_INSTRUCTIONS = ("NONE", "COLLECT COD", "DELIVER IN PERSON", "TAKE BACK RETURN")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")

#: Number of distinct ship dates.  TPC-H spans ~2500 days while orderkeys go
#: into the millions; what matters for the BCI/BNCI distinction (§5) is that
#: the shipdate domain is much smaller than the orderkey domain, so that the
#: shipdate band join is computation-intensive (large output) and the orderkey
#: band join is not.  The scaled-down generator keeps the date domain small
#: and scale-independent to preserve that relationship at any scale factor.
SHIP_DATE_RANGE = 60


@dataclass(frozen=True)
class TableSpec:
    """Cardinality specification of one generated table.

    ``per_unit`` is the number of rows generated per unit of scale; ``fixed``
    overrides it for tables whose size does not scale (REGION, NATION).
    """

    name: str
    per_unit: int = 0
    fixed: int | None = None
    minimum: int = 1

    def cardinality(self, scale: float) -> int:
        """Row count at the given scale factor."""
        if self.fixed is not None:
            return self.fixed
        return max(self.minimum, int(round(self.per_unit * scale)))


#: Relative cardinalities per unit of scale.  With ``scale=1.0`` the dataset is
#: roughly the "10 GB" dataset of the paper shrunk by four orders of magnitude,
#: preserving the LINEITEM : ORDERS : SUPPLIER ratios of TPC-H (6e6 : 1.5e6 :
#: 1e4 per scale factor).
TABLE_SPECS = {
    "REGION": TableSpec("REGION", fixed=5),
    "NATION": TableSpec("NATION", fixed=25),
    "SUPPLIER": TableSpec("SUPPLIER", per_unit=100, minimum=10),
    "ORDERS": TableSpec("ORDERS", per_unit=1500, minimum=50),
    "LINEITEM": TableSpec("LINEITEM", per_unit=6000, minimum=200),
}
