"""Legacy setup shim.

The project is configured through ``pyproject.toml``; this file only exists so
that environments without the ``wheel`` package (offline machines where PEP
517 editable builds cannot produce a wheel) can still do a development
install with ``python setup.py develop`` or ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
