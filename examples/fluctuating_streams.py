"""Data dynamics: adaptivity under fluctuating stream ratios (§5.4).

The cardinality ratio of the two input streams alternates between k and 1/k.
The adaptive operator keeps re-optimising its (n, m)-mapping; this example
prints the migrations it performs and the observed ILF/ILF* competitive
ratio, which should stay close to the proven 1.25 bound (Theorem 4.6).

Run with::

    python examples/fluctuating_streams.py
"""

import random

from repro import generate_dataset, make_query
from repro.api import JoinSession, RunConfig
from repro.core.decision import competitive_ratio_bound
from repro.engine.stream import fluctuating_order, make_tuples


def main() -> None:
    dataset = generate_dataset(scale=0.5, skew="Z0", seed=17)
    query = make_query("FLUCT_SYM", dataset)
    print(query.summary())

    machines = 16
    fluctuation_factor = 4
    rng = random.Random(17)
    left = make_tuples(query.left_relation, query.left_records, rng, query.left_tuple_size)
    right = make_tuples(query.right_relation, query.right_records, rng, query.right_tuple_size)
    warmup = (len(left) + len(right)) // 100   # initiate adaptivity after ~1% of the input
    order = fluctuating_order(left, right, fluctuation_factor=fluctuation_factor, warmup=warmup)

    session = JoinSession(
        query, config=RunConfig(machines=machines, seed=17, warmup_tuples=float(warmup))
    )
    result = session.run(arrival_order=order)

    print()
    print(f"fluctuation factor k = {fluctuation_factor}, {machines} joiners")
    print(f"migrations performed : {result.migrations}")
    print(f"final mapping        : {result.final_mapping}")
    post_init = [ratio for processed, ratio in result.ratio_series if processed > 4 * warmup]
    if post_init:
        print(f"max ILF/ILF* observed: {max(post_init):.3f}")
    print(f"theoretical bound    : {competitive_ratio_bound(1.0):.3f} (Theorem 4.1/4.6)")
    print(f"migration traffic    : {result.migration_volume:.0f} size units "
          f"({100 * result.migration_volume / max(result.routing_volume, 1e-9):.1f}% of routing traffic)")
    print()
    print("sample of the |R|/|S| ratio the controller observed over time:")
    samples = result.cardinality_series[:: max(1, len(result.cardinality_series) // 10)]
    for processed, ratio in samples:
        print(f"  after {processed:>7d} tuples: |R|/|S| = {ratio:.2f}")


if __name__ == "__main__":
    main()
