"""Quickstart: the session API on a skewed TPC-H-like workload.

This reproduces, at laptop scale, the headline comparison of the paper — the
adaptive operator (Dynamic) against the static square-grid operator
(StaticMid), the omniscient static operator (StaticOpt) and the
content-sensitive parallel symmetric hash join (SHJ) on the EQ5 equi-join
under heavy key skew — and then re-runs the winner in *streaming* mode,
pushing the input in chunks through the same session facade.

Everything goes through :mod:`repro.api`: one validated
:class:`~repro.api.RunConfig` carries every knob, and one
:class:`~repro.api.JoinSession` runs any registered operator kind.

Run with::

    python examples/quickstart.py
"""

from repro import generate_dataset, make_query
from repro.api import JoinSession, RunConfig, crash


def main() -> None:
    # 1. Generate a skewed dataset (Z4 = Zipf parameter 1.0) and build EQ5:
    #    (REGION ⋈ NATION ⋈ SUPPLIER) ⋈ LINEITEM on suppkey.
    dataset = generate_dataset(scale=0.5, skew="Z4", seed=7)
    query = make_query("EQ5", dataset)
    print(query.summary())
    print()

    # 2. One config, one session; the operator kind is a per-run choice.
    #    batching="adaptive" runs the batched data plane at reference
    #    semantics: flipping this one line changes wall-clock and simulator
    #    event counts, but not a single reported number (results and virtual
    #    times are bit-identical to the per-tuple plane — see
    #    tests/test_adaptive_conformance.py).
    #
    #    probe_engine picks how joiners evaluate the predicate — also purely
    #    a wall-clock choice, never a results choice:
    #      * "vectorized" (default): batch-aware pure-stdlib kernels.
    #      * "scalar": the per-member reference loop; the differential oracle
    #        the other engines are pinned against. Slowest, zero surprises.
    #      * "columnar": set-at-a-time NumPy kernels (needs the `columnar`
    #        extra: pip install repro[columnar]). Biggest win on match-dense
    #        workloads, where per-pair Python costs dominate.
    config = RunConfig(machines=16, seed=7, batching="adaptive")
    session = JoinSession(query, config=config)

    header = f"{'operator':<12} {'exec time':>10} {'throughput':>11} {'max ILF':>9} {'storage':>9} {'migrations':>11} {'mapping':>9}"
    print(header)
    print("-" * len(header))
    for kind in ("SHJ", "StaticMid", "Dynamic", "StaticOpt"):
        result = session.run(operator=kind)
        print(
            f"{result.operator:<12} {result.execution_time:>10.1f} {result.throughput:>11.2f} "
            f"{result.max_ilf:>9.1f} {result.total_storage:>9.1f} {result.migrations:>11d} "
            f"{str(result.final_mapping):>9}"
        )

    print()
    print(
        "Expected shape (cf. Table 2 / Fig. 6): Dynamic tracks StaticOpt, both "
        "clearly beat StaticMid, and SHJ collapses under skew."
    )

    # 3. Streaming mode: the same workload pushed in chunks.  The session
    #    feeds each chunk into a live, resumable simulation and reports
    #    mid-run metrics after every push — the ingestion style of an
    #    unbounded/live-stream deployment, which the materialised path
    #    cannot express.
    print()
    print("streaming the same workload in 4 chunks (Dynamic):")
    streaming = JoinSession(query, config=config)
    left, right = query.left_records, query.right_records
    chunks = 4
    for i in range(chunks):
        snap = streaming.push(
            left=left[i * len(left) // chunks:(i + 1) * len(left) // chunks],
            right=right[i * len(right) // chunks:(i + 1) * len(right) // chunks],
        )
        print(
            f"  chunk {i + 1}: {snap.tuples_pushed:>5d} tuples in, "
            f"{snap.output_count:>6d} outputs, {snap.migrations} migration(s), "
            f"mapping {snap.mapping}, virtual time {snap.virtual_time:.1f}"
        )
    final = streaming.finish()
    print(
        f"  final  : {final.output_count} outputs, mapping {final.final_mapping}, "
        f"execution time {final.execution_time:.1f}"
    )

    # 4. Fault tolerance: crash a joiner mid-run and let epoch-aligned
    #    checkpointing recover it.  The recovered run produces exactly the
    #    same join output as the fault-free one above — recovery is replayed
    #    through the real migration handlers, so correctness never depends
    #    on the crash schedule (see tests/test_fault_recovery.py).
    print()
    print("crashing joiner 3 at t=40 (Dynamic, checkpointing every 50 entries):")
    faulty = JoinSession(
        query,
        config=config.with_overrides(
            fault_schedule=[crash(3, 40.0)], checkpoint_interval=50
        ),
    )
    result = faulty.run(operator="Dynamic")
    print(
        f"  {result.faults_injected} crash(es), recovery time "
        f"{result.recovery_time:.1f}, {result.tuples_replayed} tuples replayed, "
        f"{result.checkpoint_overhead / 1024:.0f} KiB checkpointed, "
        f"{result.output_count} outputs"
    )


if __name__ == "__main__":
    main()
