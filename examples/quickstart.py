"""Quickstart: run the adaptive online join operator on a skewed TPC-H-like workload.

This reproduces, at laptop scale, the headline comparison of the paper: the
adaptive operator (Dynamic) against the static square-grid operator
(StaticMid), the omniscient static operator (StaticOpt) and the
content-sensitive parallel symmetric hash join (SHJ) on the EQ5 equi-join
under heavy key skew.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AdaptiveJoinOperator,
    StaticMidOperator,
    StaticOptOperator,
    SymmetricHashOperator,
    generate_dataset,
    make_query,
)


def main() -> None:
    # 1. Generate a skewed dataset (Z4 = Zipf parameter 1.0) and build EQ5:
    #    (REGION ⋈ NATION ⋈ SUPPLIER) ⋈ LINEITEM on suppkey.
    dataset = generate_dataset(scale=0.5, skew="Z4", seed=7)
    query = make_query("EQ5", dataset)
    print(query.summary())
    print()

    machines = 16
    operators = [
        SymmetricHashOperator(query, machines, seed=7),
        StaticMidOperator(query, machines, seed=7),
        AdaptiveJoinOperator(query, machines, seed=7),
        StaticOptOperator(query, machines, seed=7),
    ]

    # 2. Run each operator on the same input stream inside the simulated
    #    shared-nothing cluster and compare the metrics the paper reports.
    header = f"{'operator':<12} {'exec time':>10} {'throughput':>11} {'max ILF':>9} {'storage':>9} {'migrations':>11} {'mapping':>9}"
    print(header)
    print("-" * len(header))
    for operator in operators:
        result = operator.run()
        print(
            f"{result.operator:<12} {result.execution_time:>10.1f} {result.throughput:>11.2f} "
            f"{result.max_ilf:>9.1f} {result.total_storage:>9.1f} {result.migrations:>11d} "
            f"{str(result.final_mapping):>9}"
        )

    print()
    print(
        "Expected shape (cf. Table 2 / Fig. 6): Dynamic tracks StaticOpt, both "
        "clearly beat StaticMid, and SHJ collapses under skew."
    )


if __name__ == "__main__":
    main()
