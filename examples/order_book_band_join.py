"""Order-book style band join — the motivating scenario of the paper's intro.

Algorithmic-trading order books match buy and sell orders whose prices are
within a small band of each other.  Neither stream's size nor the price
distribution is known in advance, which is exactly the setting the adaptive
operator targets: an arbitrary (non-equi) join predicate over two unbounded
streams whose relative sizes drift over time.

This example builds two synthetic order streams (bids and asks), joins them
with a band predicate on price, and shows how the operator adapts its
(n, m)-mapping as the ask stream becomes much larger than the bid stream.

Run with::

    python examples/order_book_band_join.py
"""

import random

from repro import BandPredicate
from repro.api import JoinSession, RunConfig
from repro.data.queries import JoinQuery


def build_order_book_query(num_bids: int = 400, num_asks: int = 4000, seed: int = 11) -> JoinQuery:
    """Two streams of limit orders joined on |bid.price - ask.price| <= 0.05."""
    rng = random.Random(seed)

    def order(side: str, order_id: int) -> dict:
        return {
            "order_id": order_id,
            "side": side,
            "symbol": rng.choice(["AAPL", "MSFT", "GOOG"]),
            "price": round(rng.gauss(100.0, 2.0), 2),
            "quantity": rng.randint(1, 500),
        }

    bids = [order("BUY", i) for i in range(num_bids)]
    asks = [order("SELL", i) for i in range(num_asks)]
    return JoinQuery(
        name="ORDER_BOOK",
        left_relation="BIDS",
        right_relation="ASKS",
        left_records=bids,
        right_records=asks,
        predicate=BandPredicate("price", "price", width=0.05),
        description="order book matching candidates: bid/ask prices within 5 cents",
    )


def main() -> None:
    query = build_order_book_query()
    print(query.summary())
    print()

    session = JoinSession(query, config=RunConfig(machines=16, seed=11))
    dynamic = session.run(operator="Dynamic")
    static = session.run(operator="StaticMid")

    print(f"{'operator':<12} {'exec time':>10} {'max ILF':>9} {'matches':>9} {'mapping':>9}")
    for result in (dynamic, static):
        print(
            f"{result.operator:<12} {result.execution_time:>10.1f} {result.max_ilf:>9.1f} "
            f"{result.output_count:>9d} {str(result.final_mapping):>9}"
        )
    print()
    print(
        f"The ask stream is {len(query.right_records) // len(query.left_records)}x larger than "
        f"the bid stream, so the adaptive operator migrates from the square mapping to "
        f"{dynamic.final_mapping} and stores {static.max_ilf / max(dynamic.max_ilf, 1e-9):.1f}x "
        "less data per machine than the static square grid."
    )


if __name__ == "__main__":
    main()
